package noc

import (
	"fmt"

	"repro/internal/graph"
)

// BFSAdaptive builds an adaptive configuration for an arbitrary
// connected graph from an all-pairs BFS distance table and the BFS-tree
// escape: minimal candidates come from the table, route tails descend
// the distance gradient (lowest-numbered minimal neighbor), and blocked
// worms escape up-and-down the tree. This is how networks without
// label-arithmetic routing — hyper-deBruijn in the E-NC comparison —
// run on the engine. The table costs O(n^2) memory, so this is for
// benchmark-scale instances; HB(m,n) should use its analytic routing
// instead (hbAdaptive in the tests, hbsim -mode noc).
func BFSAdaptive(g graph.Graph) (*AdaptiveConfig, error) {
	esc, err := NewTreeEscape(g)
	if err != nil {
		return nil, err
	}
	d := graph.Build(g)
	n := d.Order()
	dist := make([]int32, n*n)
	for v := 0; v < n; v++ {
		copy(dist[v*n:(v+1)*n], graph.BFS(d, v, nil))
	}
	appendRoute := func(u, v int, buf []int) []int {
		buf = append(buf, u)
		for u != v {
			row := d.Neighbors(u)
			next := -1
			for _, w := range row {
				if dist[int(w)*n+v] == dist[u*n+v]-1 {
					next = int(w)
					break
				}
			}
			if next < 0 {
				panic(fmt.Sprintf("noc: no descent from %d toward %d", u, v))
			}
			buf = append(buf, next)
			u = next
		}
		return buf
	}
	return &AdaptiveConfig{
		Distance:    func(u, v int) int { return int(dist[u*n+v]) },
		AppendRoute: appendRoute,
		Escape:      esc,
	}, nil
}
