// Package noc is a high-throughput discrete-event engine for flit-level
// wormhole switching — the production-scale successor to the
// O(nodes x cycles) scan loops of internal/simnet and
// internal/wormhole. Three ideas carry the throughput:
//
//   - event-driven injection: each node's next injection cycle is drawn
//     geometrically and kept in a per-shard min-heap, so a cycle costs
//     O(worms that can move), not O(nodes);
//   - parked worms: a worm whose head cannot advance and whose body
//     cannot shift registers as a waiter on the channel it needs and
//     costs nothing until a release wakes it — under saturation almost
//     all worms are blocked, which is exactly where the old loops burn
//     their time;
//   - a zero-alloc arena (the internal/graph kernel and Menger
//     FlowScratch idiom): worm state lives in flat per-shard slabs with
//     fixed-capacity sub-slices, built once and reset in place, so a
//     steady-state Run performs no heap allocation
//     (TestNoCSteadyStateAllocs).
//
// The engine runs in two routing modes. Oblivious mode replays a fixed
// Route/VCPolicy pair (the same contract as package wormhole, which is
// retained as the differential oracle). Adaptive mode implements
// congestion-aware routing with an explicit escape channel in the style
// of Duato's protocol: each hop chooses among the minimal next hops —
// the first vertices of the paper's disjoint candidate paths — by local
// virtual-channel occupancy, and a worm blocked for Patience cycles
// splices onto an Escape walk whose channels are totally ordered by
// stage (stage-decreasing link weights, the gem5 butterfly discipline),
// so the escape channel-dependency graph is provably acyclic and the
// network cannot deadlock. See escape.go for the argument and the
// conformance escape-acyclic invariant for the machine check.
//
// Worker goroutines resolve channel contention with a two-phase
// claim/commit protocol (atomic minimum on a priority key), which makes
// results bit-identical for any worker count.
package noc

import (
	"fmt"
	"math/rand"
	"runtime"

	"repro/internal/collectives"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/simnet"
	"repro/internal/wormhole"
)

// AdaptiveConfig selects adaptive routing with escape-channel deadlock
// freedom.
type AdaptiveConfig struct {
	// Distance returns the shortest-path distance; minimal candidates w
	// of a hop from u toward dst satisfy Distance(w,dst) ==
	// Distance(u,dst)-1.
	Distance func(u, v int) int
	// AppendRoute appends a route from u to v (both endpoints included)
	// to buf; called once per injection for the tail after the chosen
	// first hop.
	AppendRoute func(u, v int, buf []int) []int
	// Escape is the stage-ordered escape discipline; it reserves the top
	// Escape.Classes() virtual channels of every link.
	Escape Escape
	// Patience is how many blocked cycles a worm tolerates before
	// splicing onto the escape walk (default 2).
	Patience int
}

// Config parameterises an engine. Exactly one of (Route, Policy) —
// oblivious mode — or Adaptive must be set.
type Config struct {
	Cycles       int
	Rate         float64        // per-node per-cycle injection probability
	InjectCycles int            // cycles during which injection runs (0 = Cycles)
	PacketLen    int            // flits per packet (>= 1)
	BufDepth     int            // flit buffer depth per (link, VC), 1..127
	VCs          int            // virtual channels per link, 1..32
	Pattern      simnet.Pattern // traffic pattern (uniform, permutation, ...)
	Seed         int64
	Workers      int // goroutines (0 = min(Shards, GOMAXPROCS))
	Shards       int // power-of-two logical shards (0 = 8); fixes determinism
	DeadlockAt   int // motionless cycles declared a deadlock (0 = 64)
	MaxRoute     int // upper bound on hops of any injected route

	Route  func(u, v int) []int // oblivious: node path including endpoints
	Policy wormhole.VCPolicy    // oblivious: VC choice per hop

	Adaptive *AdaptiveConfig

	Schedule faults.Schedule     // node churn applied mid-run
	Links    faults.LinkSchedule // link churn applied mid-run
	Messages []collectives.Msg   // collective replay plan injected on top
}

// Result reports a run; the JSON shape is covered by a golden test.
type Result struct {
	Cycles         int     `json:"cycles"`
	Injected       int     `json:"injected"`
	Delivered      int     `json:"delivered"`
	Dropped        int     `json:"dropped"`
	Skipped        int     `json:"skipped"`
	InFlight       int     `json:"in_flight"`
	FlitEvents     int64   `json:"flit_events"`
	AvgLatency     float64 `json:"avg_latency"`
	MaxLatency     int     `json:"max_latency"`
	Throughput     float64 `json:"throughput"`
	Escapes        int     `json:"escapes"`
	Deadlocked     bool    `json:"deadlocked"`
	DeadCycle      int     `json:"dead_cycle"`
	CollectiveDone int     `json:"collective_done"` // -1 when no plan or incomplete
}

func (cfg *Config) validate(order int) error {
	switch {
	case cfg.Cycles < 1:
		return fmt.Errorf("noc: Cycles %d < 1", cfg.Cycles)
	case cfg.Rate < 0 || cfg.Rate > 1:
		return fmt.Errorf("noc: Rate %v outside [0,1]", cfg.Rate)
	case cfg.InjectCycles < 0:
		return fmt.Errorf("noc: InjectCycles %d < 0", cfg.InjectCycles)
	case cfg.PacketLen < 1:
		return fmt.Errorf("noc: PacketLen %d < 1", cfg.PacketLen)
	case cfg.BufDepth < 1 || cfg.BufDepth > 127:
		return fmt.Errorf("noc: BufDepth %d outside [1,127]", cfg.BufDepth)
	case cfg.VCs < 1 || cfg.VCs > 32:
		return fmt.Errorf("noc: VCs %d outside [1,32]", cfg.VCs)
	case cfg.MaxRoute < 1:
		return fmt.Errorf("noc: MaxRoute %d < 1", cfg.MaxRoute)
	case cfg.Workers < 0:
		return fmt.Errorf("noc: Workers %d < 0", cfg.Workers)
	case cfg.DeadlockAt < 0:
		return fmt.Errorf("noc: DeadlockAt %d < 0", cfg.DeadlockAt)
	}
	if s := cfg.Shards; s != 0 && (s < 1 || s > 256 || s&(s-1) != 0) {
		return fmt.Errorf("noc: Shards %d is not a power of two in [1,256]", s)
	}
	oblivious := cfg.Route != nil || cfg.Policy != nil
	if oblivious && (cfg.Route == nil || cfg.Policy == nil) {
		return fmt.Errorf("noc: oblivious mode needs both Route and Policy")
	}
	if oblivious == (cfg.Adaptive != nil) {
		return fmt.Errorf("noc: exactly one of Route+Policy or Adaptive is required")
	}
	if ad := cfg.Adaptive; ad != nil {
		switch {
		case ad.Distance == nil || ad.AppendRoute == nil:
			return fmt.Errorf("noc: Adaptive needs Distance and AppendRoute")
		case ad.Escape == nil:
			return fmt.Errorf("noc: Adaptive needs an Escape discipline")
		case ad.Patience < 0:
			return fmt.Errorf("noc: Patience %d < 0", ad.Patience)
		case cfg.VCs < ad.Escape.Classes()+1:
			return fmt.Errorf("noc: adaptive routing needs VCs >= %d (1 adaptive + %d escape), got %d",
				ad.Escape.Classes()+1, ad.Escape.Classes(), cfg.VCs)
		}
	}
	if err := cfg.Schedule.Validate(order); err != nil {
		return err
	}
	if err := cfg.Links.Validate(order); err != nil {
		return err
	}
	return collectives.ValidateMsgs(cfg.Messages, order)
}

// New builds an engine for cfg on g. The constructor allocates; Run
// does not (after a warm-up run reaches the high-water marks).
func New(g graph.Graph, cfg Config) (*Engine, error) {
	if err := cfg.validate(g.Order()); err != nil {
		return nil, err
	}
	d := graph.Build(g)
	n := d.Order()
	e := &Engine{cfg: cfg, d: d, n: n}

	e.nshards = cfg.Shards
	if e.nshards == 0 {
		e.nshards = 8
	}
	for 1<<e.shardBits < e.nshards {
		e.shardBits++
	}
	e.workers = cfg.Workers
	if e.workers == 0 {
		e.workers = runtime.GOMAXPROCS(0)
	}
	if e.workers > e.nshards {
		e.workers = e.nshards
	}
	e.deadlockAt = cfg.DeadlockAt
	if e.deadlockAt == 0 {
		e.deadlockAt = 64
	}
	e.injectUntil = cfg.InjectCycles
	if e.injectUntil == 0 {
		e.injectUntil = cfg.Cycles
	}
	e.vcs = cfg.VCs
	e.escBase = cfg.VCs
	if ad := cfg.Adaptive; ad != nil {
		e.adaptive = true
		e.escBase = cfg.VCs - ad.Escape.Classes()
		e.patience = int32(ad.Patience)
		if e.patience == 0 {
			e.patience = 2
		}
	}
	hopCap := cfg.MaxRoute
	if e.adaptive {
		hopCap += cfg.Adaptive.Escape.MaxLen()
	}
	e.hopCap = hopCap

	e.offsets = make([]int32, n+1)
	for v := 0; v < n; v++ {
		e.offsets[v+1] = e.offsets[v] + int32(d.Degree(v))
	}
	totalEdges := int(e.offsets[n])
	e.owner = make([]int32, totalEdges*e.vcs)
	e.occ = make([]int32, totalEdges*e.vcs)
	e.claim = make([]uint64, totalEdges*e.vcs)
	e.waiters = make([][]waitEntry, totalEdges)
	e.faulty = make([]bool, n)
	e.deadEdge = make([]bool, totalEdges)
	e.dynamic = len(cfg.Schedule) > 0 || len(cfg.Links) > 0

	e.schedule = append(faults.Schedule(nil), cfg.Schedule...)
	e.schedule.Sort()
	e.links = append(faults.LinkSchedule(nil), cfg.Links...)
	e.links.Sort()

	e.perm = make([]int, n)
	e.permRng = rand.New(rand.NewSource(cfg.Seed ^ permSeedSalt))
	e.usable = func(v int) bool { return !e.faulty[v] }

	e.msgs = cfg.Messages
	if len(e.msgs) > 0 {
		e.msgOut = make([][]int32, len(e.msgs))
		e.msgDepCnt = make([]int32, len(e.msgs))
		e.msgWait = make([]int32, len(e.msgs))
		for i, m := range e.msgs {
			e.msgDepCnt[i] = int32(len(m.Deps))
			for _, dep := range m.Deps {
				e.msgOut[dep] = append(e.msgOut[dep], int32(i))
			}
		}
	}

	e.shards = make([]shard, e.nshards)
	for si := range e.shards {
		s := &e.shards[si]
		s.id = int32(si)
		s.rng = rand.New(rand.NewSource(cfg.Seed ^ int64(si)*shardSeedSalt))
		nodes := 0
		for v := si; v < n; v += e.nshards {
			nodes++
		}
		s.heap = make([]int64, 0, nodes)
		s.routeBuf = make([]int, 0, hopCap+1)
		s.clsBuf = make([]int8, 0, hopCap)
		pend := 0
		for _, m := range e.msgs {
			if m.Src%e.nshards == si {
				pend++
			}
		}
		s.pend = make([]int32, 0, pend)
		s.dmsgs = make([]int32, 0, pend)
	}
	return e, nil
}
