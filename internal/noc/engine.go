package noc

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/collectives"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/simnet"
)

const (
	chunkShift = 8
	chunkSize  = 1 << chunkShift

	// idleClaim marks an unclaimed channel; every claim key is smaller.
	idleClaim = ^uint64(0)

	permSeedSalt  = 0x5bd1e995
	shardSeedSalt = 0x9e3779b97f4a7c15 >> 1
)

// worm is one in-flight packet. path/chans/vcs/occupied are
// fixed-capacity sub-slices of the owning shard's slab.
type worm struct {
	path     []int32 // node sequence, endpoints included
	chans    []int32 // directed edge id per hop
	vcs      []int8  // VC per hop; -1 = adaptive, chosen at acquire time
	occupied []int8  // flits buffered per hop
	headHop  int32   // furthest acquired hop (-1 before the first)
	tailHop  int32
	toInject int32
	sunk     int32
	injected int32 // injection cycle
	escStart int32 // first escape hop (-1 until the worm escapes)
	msg      int32 // collective message id (-1 for background traffic)
	prio     uint32
	epoch    uint32 // invalidates stale waiter entries
	blocked  int32  // consecutive cycles the head failed to advance
	claimCh  int32
	claimKey uint64
	alive    bool
	parked   bool
	doomed   bool
}

type waitEntry struct {
	slot  int32
	epoch uint32
}

type parkEntry struct {
	edge  int32
	slot  int32
	epoch uint32
}

// shard owns an interleaved subset of nodes (v % nshards == id), the
// worms injected there, and all per-worker scratch, so parallel phases
// write only shard-local state plus exclusively-owned channel entries.
type shard struct {
	id       int32
	rng      *rand.Rand
	heap     []int64 // next injection per node: cycle<<32 | node, min-heap
	chunks   [][]worm
	slabs    [][]int32 // backing arrays, kept so reset can rebuild nothing
	free     []int32
	dfree    []int32 // slots retired by dropCrossing, recycled next postCycle
	act      []int32 // worms to process this cycle
	nxt      []int32 // worms still active next cycle
	parks    []parkEntry
	freed    []int32 // edges released this cycle (wake their waiters)
	dmsgs    []int32 // collective msgs delivered this cycle
	pend     []int32 // collective msgs ready to inject
	routeBuf []int
	clsBuf   []int8
	seq      uint32
	err      error

	injected   int
	delivered  int
	dropped    int
	skipped    int
	escapes    int
	totalLat   int64
	maxLat     int
	flits      int64
	progressed bool
}

// Engine is a reusable discrete-event wormhole simulator; build with
// New, execute with Run (repeatable, allocation-free at steady state).
type Engine struct {
	cfg       Config
	d         *graph.Dense
	n         int
	nshards   int
	shardBits uint
	workers   int
	vcs       int
	escBase   int // first escape VC index; == vcs in oblivious mode
	adaptive  bool
	patience  int32
	hopCap    int

	deadlockAt  int
	injectUntil int

	offsets  []int32
	owner    []int32 // channel -> owning worm slot, -1 free
	occ      []int32 // channel -> buffered flits
	claim    []uint64
	waiters  [][]waitEntry
	faulty   []bool
	deadEdge []bool
	dynamic  bool

	schedule       faults.Schedule
	links          faults.LinkSchedule
	evNode, evLink int

	perm    []int
	permRng *rand.Rand
	usable  func(int) bool

	msgs      []collectives.Msg
	msgOut    [][]int32
	msgDepCnt []int32
	msgWait   []int32

	shards []shard

	res          Result
	idle         int
	totalLat     int64
	msgDelivered int
	runErr       error

	barrier spinBarrier
	cycle   int
	stop    bool
}

// spinBarrier is a sense-reversing spin barrier for the persistent
// per-Run workers; atomics give the race detector the happens-before
// edges that order the phase-local plain accesses.
type spinBarrier struct {
	n     int32
	count atomic.Int32
	gen   atomic.Uint32
}

func (b *spinBarrier) wait() {
	g := b.gen.Load()
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		b.gen.Add(1)
		return
	}
	for i := 0; b.gen.Load() == g; i++ {
		if i&63 == 63 {
			runtime.Gosched()
		}
	}
}

func atomicMin(p *uint64, v uint64) {
	for {
		old := atomic.LoadUint64(p)
		if v >= old || atomic.CompareAndSwapUint64(p, old, v) {
			return
		}
	}
}

func (e *Engine) wormAt(slot int32) *worm {
	s := &e.shards[slot&int32(e.nshards-1)]
	local := slot >> e.shardBits
	return &s.chunks[local>>chunkShift][local&(chunkSize-1)]
}

func (e *Engine) chIdx(w *worm, h int32) int {
	return int(w.chans[h])*e.vcs + int(w.vcs[h])
}

func (e *Engine) edgeID(u, w int) int32 {
	row := e.d.Neighbors(u)
	lo, hi := 0, len(row)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if row[mid] < int32(w) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(row) || row[lo] != int32(w) {
		panic(fmt.Sprintf("noc: route uses non-edge %d-%d", u, w))
	}
	return e.offsets[u] + int32(lo)
}

// --- worm slab ---

func (e *Engine) allocWorm(s *shard) int32 {
	if k := len(s.free); k > 0 {
		slot := s.free[k-1]
		s.free = s.free[:k-1]
		return slot
	}
	ci := len(s.chunks)
	if ci >= 1<<(30-chunkShift-e.shardBits) {
		s.err = fmt.Errorf("noc: worm slab exhausted (shard %d)", s.id)
		return -1
	}
	pathCap := e.hopCap + 1
	ws := make([]worm, chunkSize)
	paths := make([]int32, chunkSize*pathCap)
	chans := make([]int32, chunkSize*e.hopCap)
	vcs := make([]int8, chunkSize*e.hopCap)
	occ := make([]int8, chunkSize*e.hopCap)
	for i := range ws {
		ws[i].path = paths[i*pathCap : i*pathCap : (i+1)*pathCap]
		ws[i].chans = chans[i*e.hopCap : i*e.hopCap : (i+1)*e.hopCap]
		ws[i].vcs = vcs[i*e.hopCap : i*e.hopCap : (i+1)*e.hopCap]
		ws[i].occupied = occ[i*e.hopCap : i*e.hopCap : (i+1)*e.hopCap]
	}
	s.chunks = append(s.chunks, ws)
	// Keep the free list able to hold every slot of every chunk, so a
	// later reset can rebuild it without growing (the zero-alloc gate).
	if total := (ci + 1) * chunkSize; cap(s.free) < total {
		nf := make([]int32, len(s.free), total)
		copy(nf, s.free)
		s.free = nf
	}
	base := int32(ci << chunkShift)
	for i := chunkSize - 1; i >= 1; i-- {
		s.free = append(s.free, (base+int32(i))<<e.shardBits|s.id)
	}
	return base<<e.shardBits | s.id
}

func (e *Engine) freeWorm(s *shard, w *worm, slot int32) {
	w.alive = false
	w.parked = false
	w.epoch++
	s.free = append(s.free, slot)
}

// deferFreeWorm retires a worm whose slot may still be referenced by a
// stale s.act entry: dropCrossing runs after the act/nxt swap, so the
// entry is consumed only during the coming cycle. Returning the slot to
// s.free now would let the next injectShard pop it (LIFO) and append a
// second act entry for the same slot, double-processing the new worm.
// The slot rejoins the free list in postCycle, after act is consumed.
func (e *Engine) deferFreeWorm(s *shard, w *worm, slot int32) {
	w.alive = false
	w.parked = false
	w.epoch++
	s.dfree = append(s.dfree, slot)
}

// --- injection ---

func heapPush(h []int64, v int64) []int64 {
	h = append(h, v)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p] <= h[i] {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	return h
}

func heapPop(h []int64) []int64 {
	k := len(h) - 1
	h[0] = h[k]
	h = h[:k]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < k && h[l] < h[m] {
			m = l
		}
		if r < k && h[r] < h[m] {
			m = r
		}
		if m == i {
			return h
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// gap draws the geometric spacing between successive injections of one
// node — the event-driven equivalent of a per-cycle Bernoulli trial.
func gap(rng *rand.Rand, rate float64) int {
	if rate >= 1 {
		return 0
	}
	g := int(math.Log(1-rng.Float64()) / math.Log(1-rate))
	if g < 0 {
		return 0
	}
	return g
}

func (e *Engine) injectShard(s *shard, c int) {
	if s.err != nil {
		return
	}
	for _, mi := range s.pend {
		m := &e.msgs[mi]
		if e.faulty[m.Src] || e.faulty[m.Dst] {
			s.skipped++
			continue
		}
		e.startWorm(s, c, m.Src, m.Dst, mi)
	}
	s.pend = s.pend[:0]
	if e.cfg.Rate <= 0 || c >= e.injectUntil {
		return
	}
	for len(s.heap) > 0 && int(s.heap[0]>>32) <= c {
		v := int(s.heap[0] & 0xffffffff)
		s.heap = heapPop(s.heap)
		s.heap = heapPush(s.heap, int64(c+1+gap(s.rng, e.cfg.Rate))<<32|int64(v))
		if e.faulty[v] {
			s.skipped++
			continue
		}
		dst, ok := simnet.DrawDest(e.cfg.Pattern, s.rng, e.perm, e.n, v, e.usable)
		if !ok {
			s.skipped++
			continue
		}
		e.startWorm(s, c, v, dst, -1)
	}
}

func (e *Engine) startWorm(s *shard, c, src, dst int, msg int32) {
	slot := e.allocWorm(s)
	if slot < 0 {
		return
	}
	w := e.wormAt(slot)
	w.path = append(w.path[:0], int32(src))
	w.chans = w.chans[:0]
	w.vcs = w.vcs[:0]

	if e.adaptive {
		ad := e.cfg.Adaptive
		d0 := ad.Distance(src, dst)
		row := e.d.Neighbors(src)
		base := e.offsets[src]
		best, bestEdge, bestScore := -1, int32(-1), int32(1<<30)
		for k, nb := range row {
			wi := int(nb)
			if e.faulty[wi] {
				continue
			}
			edge := base + int32(k)
			if e.deadEdge[edge] {
				continue
			}
			if ad.Distance(wi, dst) != d0-1 {
				continue
			}
			// Congestion score of the adaptive VCs on this link: owned
			// channels weigh a full buffer, plus actual buffered flits.
			score := int32(0)
			for vc := 0; vc < e.escBase; vc++ {
				ch := int(edge)*e.vcs + vc
				if e.owner[ch] >= 0 {
					score += int32(e.cfg.BufDepth)
				}
				score += e.occ[ch]
			}
			if score < bestScore {
				bestScore, best, bestEdge = score, wi, edge
			}
		}
		if best < 0 {
			s.skipped++
			e.freeWorm(s, w, slot)
			return
		}
		s.routeBuf = ad.AppendRoute(best, dst, s.routeBuf[:0])
		if len(s.routeBuf) > e.cfg.MaxRoute || len(s.routeBuf) < 1 {
			s.err = fmt.Errorf("noc: adaptive route %d->%d has %d hops (MaxRoute %d)",
				src, dst, len(s.routeBuf), e.cfg.MaxRoute)
			e.freeWorm(s, w, slot)
			return
		}
		w.chans = append(w.chans, bestEdge)
		w.vcs = append(w.vcs, -1)
		prev := best
		ok := true
		for _, x := range s.routeBuf {
			w.path = append(w.path, int32(x))
			if x == prev {
				continue
			}
			edge := e.edgeID(prev, x)
			if e.dynamic && (e.faulty[x] || e.deadEdge[edge]) {
				ok = false
				break
			}
			w.chans = append(w.chans, edge)
			w.vcs = append(w.vcs, -1)
			prev = x
		}
		if !ok || len(w.path) != len(w.chans)+1 {
			s.skipped++
			e.freeWorm(s, w, slot)
			return
		}
	} else {
		path := e.cfg.Route(src, dst)
		if len(path) < 2 || path[0] != src || path[len(path)-1] != dst || len(path)-1 > e.cfg.MaxRoute {
			s.err = fmt.Errorf("noc: bad route %v for %d->%d (MaxRoute %d)", path, src, dst, e.cfg.MaxRoute)
			e.freeWorm(s, w, slot)
			return
		}
		state := 0
		ok := true
		for i := 1; i < len(path); i++ {
			var vc int
			vc, state = e.cfg.Policy(i-1, path[i-1], path[i], state)
			if vc < 0 || vc >= e.vcs {
				s.err = fmt.Errorf("noc: policy chose vc %d of %d", vc, e.vcs)
				e.freeWorm(s, w, slot)
				return
			}
			edge := e.edgeID(path[i-1], path[i])
			if e.dynamic && (e.faulty[path[i]] || e.deadEdge[edge]) {
				ok = false
				break
			}
			w.path = append(w.path, int32(path[i]))
			w.chans = append(w.chans, edge)
			w.vcs = append(w.vcs, int8(vc))
		}
		if !ok {
			s.skipped++
			e.freeWorm(s, w, slot)
			return
		}
	}

	hops := len(w.chans)
	w.occupied = w.occupied[:hops]
	for i := range w.occupied {
		w.occupied[i] = 0
	}
	w.headHop = -1
	w.tailHop = 0
	w.toInject = int32(e.cfg.PacketLen)
	w.sunk = 0
	w.injected = int32(c)
	w.escStart = -1
	w.msg = msg
	w.blocked = 0
	w.claimCh = -1
	w.alive = true
	w.parked = false
	w.doomed = false
	w.prio = s.seq<<e.shardBits | uint32(s.id)
	w.claimKey = uint64(w.prio)<<32 | uint64(uint32(slot))
	s.seq++
	s.injected++
	s.act = append(s.act, slot)
}

// --- claim phase ---

func (e *Engine) claimShard(s *shard, c int) {
	for _, slot := range s.act {
		w := e.wormAt(slot)
		if !w.alive || w.doomed {
			continue
		}
		w.claimCh = -1
		last := int32(len(w.chans)) - 1
		if w.headHop >= last {
			continue
		}
		if e.adaptive && w.escStart < 0 && w.blocked >= e.patience {
			e.spliceEscape(s, w)
			if w.doomed {
				continue
			}
			last = int32(len(w.chans)) - 1
		}
		h := w.headHop + 1
		edge := w.chans[h]
		pick := int32(-1)
		if vc := w.vcs[h]; vc >= 0 {
			ch := edge*int32(e.vcs) + int32(vc)
			if e.owner[ch] < 0 {
				pick = ch
			}
		} else {
			base := edge * int32(e.vcs)
			for vc := 0; vc < e.escBase; vc++ {
				if e.owner[base+int32(vc)] < 0 {
					pick = base + int32(vc)
					break
				}
			}
		}
		if pick < 0 {
			continue
		}
		w.claimCh = pick
		atomicMin(&e.claim[pick], w.claimKey)
	}
}

// spliceEscape reroutes a blocked worm: the unacquired tail of its path
// is replaced by the escape walk from the head's current node, on the
// reserved stage-ordered escape VCs. If churn has killed part of the
// walk the worm is doomed instead (dropped at commit).
func (e *Engine) spliceEscape(s *shard, w *worm) {
	ad := e.cfg.Adaptive
	keep := w.headHop + 2 // nodes up to and including the head's position
	head := int(w.path[keep-1])
	dst := int(w.path[len(w.path)-1])
	w.path = w.path[:keep]
	w.chans = w.chans[:keep-1]
	w.vcs = w.vcs[:keep-1]
	w.occupied = w.occupied[:keep-1]
	plen := len(w.path)
	s.clsBuf = s.clsBuf[:0]
	w.path, s.clsBuf = ad.Escape.AppendHops(head, dst, w.path, s.clsBuf)
	prev := int32(head)
	for i, x := range w.path[plen:] {
		edge := e.edgeID(int(prev), int(x))
		if e.dynamic && (e.faulty[x] || e.deadEdge[edge]) {
			w.doomed = true
			return
		}
		w.chans = append(w.chans, edge)
		w.vcs = append(w.vcs, int8(e.escBase)+s.clsBuf[i])
		w.occupied = append(w.occupied, 0)
		prev = x
	}
	w.escStart = keep - 1
	w.blocked = 0
	s.escapes++
}

// --- commit phase ---

func (e *Engine) commitShard(s *shard, c int) {
	bufDepth := int8(e.cfg.BufDepth)
	for _, slot := range s.act {
		w := e.wormAt(slot)
		if !w.alive {
			continue
		}
		if w.doomed {
			e.dropWorm(s, w, slot)
			continue
		}
		progress := false
		last := int32(len(w.chans)) - 1
		// Sink at the destination.
		if w.headHop == last && w.occupied[last] > 0 {
			w.occupied[last]--
			e.occ[e.chIdx(w, last)]--
			w.sunk++
			s.flits++
			progress = true
		}
		// Acquire the claimed channel if this worm won the claim.
		if w.claimCh >= 0 {
			if atomic.LoadUint64(&e.claim[w.claimCh]) == w.claimKey {
				atomic.StoreUint64(&e.claim[w.claimCh], idleClaim)
				h := w.headHop + 1
				e.owner[w.claimCh] = slot
				w.vcs[h] = int8(w.claimCh % int32(e.vcs))
				w.headHop = h
				w.blocked = 0
				progress = true
			} else {
				w.blocked++
			}
		} else if w.headHop < last {
			w.blocked++
		}
		// Shift flits downstream-first between adjacent owned channels.
		for h := w.headHop; h > w.tailHop; h-- {
			if w.occupied[h] < bufDepth && w.occupied[h-1] > 0 {
				w.occupied[h]++
				e.occ[e.chIdx(w, h)]++
				w.occupied[h-1]--
				e.occ[e.chIdx(w, h-1)]--
				s.flits++
				progress = true
			}
		}
		// Inject the next flit at the source.
		if w.toInject > 0 && w.headHop >= w.tailHop && w.occupied[w.tailHop] < bufDepth {
			w.occupied[w.tailHop]++
			e.occ[e.chIdx(w, w.tailHop)]++
			w.toInject--
			s.flits++
			progress = true
		}
		// Release drained tail channels.
		for w.toInject == 0 && w.tailHop < w.headHop && w.occupied[w.tailHop] == 0 {
			e.owner[e.chIdx(w, w.tailHop)] = -1
			s.freed = append(s.freed, w.chans[w.tailHop])
			w.tailHop++
		}
		// Completion.
		if int(w.sunk) == e.cfg.PacketLen {
			e.owner[e.chIdx(w, last)] = -1
			s.freed = append(s.freed, w.chans[last])
			s.delivered++
			lat := c + 1 - int(w.injected)
			s.totalLat += int64(lat)
			if lat > s.maxLat {
				s.maxLat = lat
			}
			if w.msg >= 0 {
				s.dmsgs = append(s.dmsgs, w.msg)
			}
			s.progressed = true
			e.freeWorm(s, w, slot)
			continue
		}
		if progress {
			s.progressed = true
			s.nxt = append(s.nxt, slot)
			continue
		}
		switch {
		case w.claimCh >= 0:
			// Lost a claim race; the edge may still have a free VC, so
			// stay active and retry (no release would wake us).
			s.nxt = append(s.nxt, slot)
		case e.adaptive && w.escStart < 0:
			// Not yet escaped: spin until patience splices the escape.
			s.nxt = append(s.nxt, slot)
		case w.headHop < last:
			// Fully blocked: park until the needed edge frees a channel.
			w.parked = true
			s.parks = append(s.parks, parkEntry{edge: w.chans[w.headHop+1], slot: slot, epoch: w.epoch})
		default:
			s.nxt = append(s.nxt, slot)
		}
	}
}

// dropWorm releases everything a worm owns and retires it (node/link
// churn or a doomed escape). Only the owning shard's worker may call it.
func (e *Engine) dropWorm(s *shard, w *worm, slot int32) {
	for h := w.tailHop; h <= w.headHop; h++ {
		ch := e.chIdx(w, h)
		e.occ[ch] -= int32(w.occupied[h])
		w.occupied[h] = 0
		e.owner[ch] = -1
		s.freed = append(s.freed, w.chans[h])
	}
	s.dropped++
	e.freeWorm(s, w, slot)
}

// --- serial phases ---

func (e *Engine) wakeEdge(edge int32, toAct bool) {
	ws := e.waiters[edge]
	if len(ws) == 0 {
		return
	}
	for _, en := range ws {
		w := e.wormAt(en.slot)
		if w.epoch != en.epoch || !w.parked {
			continue
		}
		w.parked = false
		w.blocked = 0
		sh := &e.shards[en.slot&int32(e.nshards-1)]
		if toAct {
			sh.act = append(sh.act, en.slot)
		} else {
			sh.nxt = append(sh.nxt, en.slot)
		}
	}
	e.waiters[edge] = ws[:0]
}

func (e *Engine) applyEvents(c int) {
	for e.evNode < len(e.schedule) && e.schedule[e.evNode].Cycle <= c {
		ev := e.schedule[e.evNode]
		e.evNode++
		if ev.Fail {
			if !e.faulty[ev.Node] {
				e.faulty[ev.Node] = true
				e.dropCrossing(int32(ev.Node), -1)
			}
		} else {
			e.faulty[ev.Node] = false
		}
	}
	for e.evLink < len(e.links) && e.links[e.evLink].Cycle <= c {
		ev := e.links[e.evLink]
		e.evLink++
		a, b := e.edgeID(ev.U, ev.V), e.edgeID(ev.V, ev.U)
		if ev.Fail {
			if !e.deadEdge[a] {
				e.deadEdge[a], e.deadEdge[b] = true, true
				e.dropCrossing(-1, a)
				e.dropCrossing(-1, b)
			}
		} else {
			e.deadEdge[a], e.deadEdge[b] = false, false
		}
	}
}

// dropCrossing retires every live worm whose remaining journey uses the
// failed node or directed edge; runs serially at cycle start.
func (e *Engine) dropCrossing(node, edge int32) {
	for si := range e.shards {
		s := &e.shards[si]
		for ci := range s.chunks {
			for wi := range s.chunks[ci] {
				w := &s.chunks[ci][wi]
				if !w.alive {
					continue
				}
				hit := false
				for h := w.tailHop; h < int32(len(w.chans)) && !hit; h++ {
					if edge >= 0 && w.chans[h] == edge {
						hit = true
					}
					if node >= 0 && (w.path[h] == node || w.path[h+1] == node) {
						hit = true
					}
				}
				if !hit {
					continue
				}
				slot := (int32(ci<<chunkShift|wi))<<e.shardBits | s.id
				for h := w.tailHop; h <= w.headHop; h++ {
					ch := e.chIdx(w, h)
					e.occ[ch] -= int32(w.occupied[h])
					w.occupied[h] = 0
					e.owner[ch] = -1
					e.wakeEdge(w.chans[h], true)
				}
				s.dropped++
				e.deferFreeWorm(s, w, slot)
			}
		}
	}
}

func (e *Engine) msgDone(mi int32, c int) {
	for _, dep := range e.msgOut[mi] {
		e.msgWait[dep]--
		if e.msgWait[dep] == 0 {
			src := e.msgs[dep].Src
			sh := &e.shards[src%e.nshards]
			sh.pend = append(sh.pend, dep)
		}
	}
	e.msgDelivered++
	if e.msgDelivered == len(e.msgs) && e.res.CollectiveDone < 0 {
		e.res.CollectiveDone = c
	}
}

func (e *Engine) nextInjection(from int) int {
	if e.cfg.Rate <= 0 || from >= e.injectUntil {
		return -1
	}
	best := -1
	for si := range e.shards {
		h := e.shards[si].heap
		if len(h) == 0 {
			continue
		}
		c := int(h[0] >> 32)
		if c < from {
			c = from
		}
		if c >= e.injectUntil {
			continue
		}
		if best < 0 || c < best {
			best = c
		}
	}
	return best
}

func (e *Engine) nextEventCycle(from int) int {
	best := -1
	if e.evNode < len(e.schedule) {
		best = e.schedule[e.evNode].Cycle
	}
	if e.evLink < len(e.links) {
		if c := e.links[e.evLink].Cycle; best < 0 || c < best {
			best = c
		}
	}
	if best >= 0 && best < from {
		best = from
	}
	return best
}

// postCycle merges shard results, wakes waiters, schedules collective
// messages, runs deadlock accounting, and picks the next cycle
// (fast-forwarding empty stretches). Returns (nextCycle, stop).
func (e *Engine) postCycle(c int) (int, bool) {
	progress := false
	pending := 0
	for si := range e.shards {
		s := &e.shards[si]
		if s.err != nil && e.runErr == nil {
			e.runErr = s.err
		}
		if s.progressed {
			progress = true
			s.progressed = false
		}
		// Slots deferred by dropCrossing last cycle: their stale act
		// entries have now been consumed, so recycling is safe again.
		s.free = append(s.free, s.dfree...)
		s.dfree = s.dfree[:0]
		for _, p := range s.parks {
			e.waiters[p.edge] = append(e.waiters[p.edge], waitEntry{slot: p.slot, epoch: p.epoch})
		}
		s.parks = s.parks[:0]
	}
	for si := range e.shards {
		s := &e.shards[si]
		for _, edge := range s.freed {
			e.wakeEdge(edge, false)
		}
		s.freed = s.freed[:0]
		for _, mi := range s.dmsgs {
			e.msgDone(mi, c)
		}
		s.dmsgs = s.dmsgs[:0]
	}
	active := 0
	for si := range e.shards {
		s := &e.shards[si]
		s.act, s.nxt = s.nxt, s.act[:0]
		active += len(s.act)
		pending += len(s.pend)
	}
	if e.runErr != nil {
		return 0, true
	}
	live := 0
	for si := range e.shards {
		s := &e.shards[si]
		live += s.injected - s.delivered - s.dropped
	}
	if live > 0 && !progress {
		e.idle++
		if e.idle >= e.deadlockAt {
			e.res.Deadlocked = true
			e.res.DeadCycle = c
			return 0, true
		}
	} else if progress {
		e.idle = 0
	}
	next := c + 1
	if next >= e.cfg.Cycles {
		return 0, true
	}
	if active == 0 && pending == 0 {
		// Nothing can move until an injection or a churn event; jump.
		target := e.nextInjection(next)
		if ev := e.nextEventCycle(next); ev >= 0 && (target < 0 || ev < target) {
			target = ev
		}
		if target < 0 {
			if live > 0 {
				// Parked worms that nothing will ever wake: deadlock now.
				e.res.Deadlocked = true
				e.res.DeadCycle = c
			}
			return 0, true
		}
		if target >= e.cfg.Cycles {
			target = e.cfg.Cycles // run out the clock below
		}
		if skip := target - next; skip > 0 && live > 0 {
			e.idle += skip
			if e.idle >= e.deadlockAt {
				e.res.Deadlocked = true
				// The skipped cycles are next..target-1; cumulative idle
				// first reaches deadlockAt at the (deadlockAt - prior
				// idle)-th of them, matching the per-cycle accounting.
				e.res.DeadCycle = next + e.deadlockAt - (e.idle - skip) - 1
				return 0, true
			}
		}
		next = target
		if next >= e.cfg.Cycles {
			return 0, true
		}
	}
	return next, false
}

// --- run ---

func (e *Engine) reset() {
	e.res = Result{Cycles: e.cfg.Cycles, CollectiveDone: -1}
	e.idle = 0
	e.totalLat = 0
	e.runErr = nil
	e.evNode, e.evLink = 0, 0
	e.msgDelivered = 0
	for i := range e.owner {
		e.owner[i] = -1
		e.occ[i] = 0
		e.claim[i] = idleClaim
	}
	for i := range e.waiters {
		e.waiters[i] = e.waiters[i][:0]
	}
	for i := range e.faulty {
		e.faulty[i] = false
	}
	for i := range e.deadEdge {
		e.deadEdge[i] = false
	}
	for i := range e.perm {
		e.perm[i] = i
	}
	e.permRng.Seed(e.cfg.Seed ^ permSeedSalt)
	for i := e.n - 1; i > 0; i-- {
		j := e.permRng.Intn(i + 1)
		e.perm[i], e.perm[j] = e.perm[j], e.perm[i]
	}
	for i := range e.msgWait {
		e.msgWait[i] = e.msgDepCnt[i]
	}
	for si := range e.shards {
		s := &e.shards[si]
		s.rng.Seed(e.cfg.Seed ^ int64(si)*shardSeedSalt)
		s.heap = s.heap[:0]
		s.act = s.act[:0]
		s.nxt = s.nxt[:0]
		s.parks = s.parks[:0]
		s.freed = s.freed[:0]
		s.dmsgs = s.dmsgs[:0]
		s.pend = s.pend[:0]
		s.free = s.free[:0]
		s.dfree = s.dfree[:0]
		for ci := range s.chunks {
			for wi := chunkSize - 1; wi >= 0; wi-- {
				s.chunks[ci][wi].alive = false
				s.chunks[ci][wi].parked = false
				s.free = append(s.free, (int32(ci<<chunkShift|wi))<<e.shardBits|s.id)
			}
		}
		s.seq = 0
		s.err = nil
		s.injected, s.delivered, s.dropped, s.skipped, s.escapes = 0, 0, 0, 0, 0
		s.totalLat, s.maxLat, s.flits = 0, 0, 0
		s.progressed = false
		if e.cfg.Rate > 0 {
			for v := si; v < e.n; v += e.nshards {
				s.heap = heapPush(s.heap, int64(gap(s.rng, e.cfg.Rate))<<32|int64(v))
			}
		}
	}
	for i, m := range e.msgs {
		if e.msgDepCnt[i] == 0 {
			sh := &e.shards[m.Src%e.nshards]
			sh.pend = append(sh.pend, int32(i))
		}
	}
}

// Run executes the configured workload and returns the aggregate
// result. Run may be called repeatedly; every call replays the same
// seeded workload and, once slab high-water marks are reached, performs
// no heap allocation.
func (e *Engine) Run() (Result, error) {
	e.reset()
	e.applyEvents(0)
	if e.workers <= 1 {
		e.runSerial()
	} else {
		e.runParallel()
	}
	for si := range e.shards {
		s := &e.shards[si]
		e.res.Injected += s.injected
		e.res.Delivered += s.delivered
		e.res.Dropped += s.dropped
		e.res.Skipped += s.skipped
		e.res.Escapes += s.escapes
		e.res.FlitEvents += s.flits
		e.res.InFlight += s.injected - s.delivered - s.dropped
		if s.maxLat > e.res.MaxLatency {
			e.res.MaxLatency = s.maxLat
		}
		e.totalLat += s.totalLat
	}
	if e.res.Delivered > 0 {
		e.res.AvgLatency = float64(e.totalLat) / float64(e.res.Delivered)
	}
	e.res.Throughput = float64(e.res.Delivered) / float64(e.cfg.Cycles)
	return e.res, e.runErr
}

func (e *Engine) runSerial() {
	c := 0
	for {
		for si := range e.shards {
			e.injectShard(&e.shards[si], c)
		}
		for si := range e.shards {
			e.claimShard(&e.shards[si], c)
		}
		for si := range e.shards {
			e.commitShard(&e.shards[si], c)
		}
		next, stop := e.postCycle(c)
		if stop {
			return
		}
		e.applyEvents(next)
		c = next
	}
}

func (e *Engine) runParallel() {
	e.barrier.n = int32(e.workers)
	e.barrier.count.Store(0)
	e.cycle = 0
	e.stop = false
	var wg sync.WaitGroup
	for id := 1; id < e.workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			e.workerLoop(id)
		}(id)
	}
	e.workerLoop(0)
	wg.Wait()
}

func (e *Engine) workerLoop(id int) {
	for {
		e.barrier.wait()
		if e.stop {
			return
		}
		c := e.cycle
		for si := id; si < e.nshards; si += e.workers {
			e.injectShard(&e.shards[si], c)
		}
		e.barrier.wait()
		for si := id; si < e.nshards; si += e.workers {
			e.claimShard(&e.shards[si], c)
		}
		e.barrier.wait()
		for si := id; si < e.nshards; si += e.workers {
			e.commitShard(&e.shards[si], c)
		}
		e.barrier.wait()
		if id == 0 {
			next, stop := e.postCycle(c)
			if stop {
				e.stop = true
			} else {
				e.applyEvents(next)
				e.cycle = next
			}
		}
	}
}
