package noc

import (
	"testing"

	"repro/internal/core"
)

// TestNoCSteadyStateAllocs is the zero-alloc gate for the engine: after
// one warm run has grown the worm arena, per-shard work lists, and wait
// queues to their high-water marks, repeated Run() calls on the same
// Engine must not allocate. Workers is pinned to 1 so the measurement
// exercises the serial path (spawning worker goroutines allocates by
// definition; the parallel path shares every data structure measured
// here).
func TestNoCSteadyStateAllocs(t *testing.T) {
	hb := core.MustNew(2, 3)
	e, err := New(hb, Config{
		Cycles: 400, Rate: 0.4, PacketLen: 4, BufDepth: 2, VCs: 4,
		MaxRoute: hb.DiameterFormula(), Adaptive: hbAdaptive(hb),
		Seed: 9, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if warm.Delivered == 0 || warm.Escapes == 0 {
		t.Fatalf("warm run too quiet to be a meaningful gate: %+v", warm)
	}
	if avg := testing.AllocsPerRun(5, func() {
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("steady-state Run allocates %v per run, want 0", avg)
	}
}
