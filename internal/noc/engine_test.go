package noc

import (
	"testing"

	"repro/internal/collectives"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/wormhole"
)

// hbAdaptive is the canonical adaptive configuration for HB(m,n):
// minimal candidates by the paper's two-phase distance, route tails by
// the allocation-free AppendRoute, escapes on the stage-ordered
// clockwise discipline.
func hbAdaptive(hb *core.HyperButterfly) *AdaptiveConfig {
	return &AdaptiveConfig{
		Distance:    hb.Distance,
		AppendRoute: hb.AppendRoute,
		Escape:      NewHBEscape(hb),
	}
}

func cwRingRoute(n int) func(u, v int) []int {
	return func(u, v int) []int {
		p := []int{u}
		for cur := u; cur != v; {
			cur = (cur + 1) % n
			p = append(p, cur)
		}
		return p
	}
}

func TestConfigValidation(t *testing.T) {
	hb := core.MustNew(2, 3)
	good := Config{
		Cycles: 10, Rate: 0.1, PacketLen: 2, BufDepth: 2, VCs: 4,
		MaxRoute: hb.DiameterFormula(), Adaptive: hbAdaptive(hb),
	}
	if _, err := New(hb, good); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	mut := []struct {
		name string
		mod  func(*Config)
	}{
		{"cycles", func(c *Config) { c.Cycles = 0 }},
		{"rate", func(c *Config) { c.Rate = 1.5 }},
		{"packetlen", func(c *Config) { c.PacketLen = 0 }},
		{"bufdepth", func(c *Config) { c.BufDepth = 0 }},
		{"bufdepth-high", func(c *Config) { c.BufDepth = 1000 }},
		{"vcs", func(c *Config) { c.VCs = 0 }},
		{"vcs-escape", func(c *Config) { c.VCs = 3 }}, // needs 3 escape + 1 adaptive
		{"maxroute", func(c *Config) { c.MaxRoute = 0 }},
		{"shards", func(c *Config) { c.Shards = 3 }},
		{"workers", func(c *Config) { c.Workers = -1 }},
		{"both-modes", func(c *Config) { c.Route = cwRingRoute(4); c.Policy = wormhole.SingleVC }},
		{"no-mode", func(c *Config) { c.Adaptive = nil }},
		{"route-only", func(c *Config) { c.Adaptive = nil; c.Route = cwRingRoute(4) }},
		{"no-escape", func(c *Config) { c.Adaptive = &AdaptiveConfig{Distance: hb.Distance, AppendRoute: hb.AppendRoute} }},
		{"bad-schedule", func(c *Config) { c.Schedule = faults.Schedule{{Cycle: 1, Node: -1, Fail: true}} }},
		{"bad-links", func(c *Config) { c.Links = faults.LinkSchedule{{Cycle: 1, U: 0, V: 0, Fail: true}} }},
		{"bad-msgs", func(c *Config) { c.Messages = []collectives.Msg{{Src: 0, Dst: 0}} }},
	}
	for _, m := range mut {
		cfg := good
		m.mod(&cfg)
		if _, err := New(hb, cfg); err == nil {
			t.Errorf("%s: invalid config accepted", m.name)
		}
	}
}

// TestObliviousLightLoad: low-rate oblivious traffic on a ring is fully
// delivered with sane accounting — the basic sanity run.
func TestObliviousLightLoad(t *testing.T) {
	ring := graph.Ring{N: 8}
	e, err := New(ring, Config{
		Cycles: 2000, Rate: 0.01, PacketLen: 3, BufDepth: 4, VCs: 2,
		MaxRoute: 8, Route: cwRingRoute(8), Policy: wormhole.RingDateline(8), Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked {
		t.Fatalf("light load deadlocked: %+v", res)
	}
	if res.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if res.Injected != res.Delivered+res.InFlight+res.Dropped {
		t.Fatalf("accounting: %+v", res)
	}
	if res.MaxLatency < 3 {
		t.Fatalf("max latency %d below packet length", res.MaxLatency)
	}
	if res.FlitEvents < int64(res.Delivered*3) {
		t.Fatalf("flit events %d below delivered flits", res.FlitEvents)
	}
}

// TestAdaptiveSaturatingNoDeadlock is the acceptance run: HB(3,3) at
// saturating injection with adaptive routing and the escape channel
// completes with Deadlocked == false — the dynamic counterpart of the
// static acyclicity proof.
func TestAdaptiveSaturatingNoDeadlock(t *testing.T) {
	hb := core.MustNew(3, 3)
	e, err := New(hb, Config{
		Cycles: 2000, Rate: 0.5, PacketLen: 4, BufDepth: 2, VCs: 4,
		MaxRoute: hb.DiameterFormula(), Adaptive: hbAdaptive(hb), Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked {
		t.Fatalf("adaptive escape run deadlocked at cycle %d: %+v", res.DeadCycle, res)
	}
	if res.Delivered == 0 {
		t.Fatal("nothing delivered at saturation")
	}
	if res.Injected != res.Delivered+res.InFlight+res.Dropped {
		t.Fatalf("accounting: %+v", res)
	}
	if res.Escapes == 0 {
		t.Fatal("saturating load never exercised the escape channel")
	}
}

// TestWorkerDeterminism: the claim/commit protocol makes results
// bit-identical regardless of worker count.
func TestWorkerDeterminism(t *testing.T) {
	hb := core.MustNew(2, 3)
	base := Config{
		Cycles: 800, Rate: 0.4, PacketLen: 4, BufDepth: 2, VCs: 4,
		MaxRoute: hb.DiameterFormula(), Adaptive: hbAdaptive(hb), Seed: 17,
	}
	var ref Result
	for i, workers := range []int{1, 2, 4, 8} {
		cfg := base
		cfg.Workers = workers
		e, err := New(hb, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = res
			continue
		}
		if res != ref {
			t.Fatalf("workers=%d diverged:\n  %+v\nvs %+v", workers, res, ref)
		}
	}
}

// TestRunRepeatable: the same engine re-run yields the same result (the
// property the zero-alloc gate and the resettable arena rely on).
func TestRunRepeatable(t *testing.T) {
	hb := core.MustNew(2, 3)
	e, err := New(hb, Config{
		Cycles: 600, Rate: 0.3, PacketLen: 3, BufDepth: 2, VCs: 4,
		MaxRoute: hb.DiameterFormula(), Adaptive: hbAdaptive(hb), Seed: 23, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("re-run diverged:\n  %+v\nvs %+v", a, b)
	}
}

// TestNodeChurn: mid-run node failures drop in-flight worms, suppress
// injection at dead nodes, and never corrupt the accounting; recovery
// restores service.
func TestNodeChurn(t *testing.T) {
	hb := core.MustNew(2, 3)
	sched, err := faults.RandomChurn(faults.ChurnConfig{
		Order: hb.Order(), Cycles: 1200, MaxLive: 3, Rate: 0.02,
		MinDwell: 50, MaxDwell: 200, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(hb, Config{
		Cycles: 1500, Rate: 0.2, PacketLen: 3, BufDepth: 2, VCs: 4,
		MaxRoute: hb.DiameterFormula(), Adaptive: hbAdaptive(hb), Seed: 29,
		Schedule: sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked {
		t.Fatalf("churn run deadlocked: %+v", res)
	}
	if res.Dropped == 0 {
		t.Fatal("churn never dropped a worm — schedule not exercised")
	}
	if res.Injected != res.Delivered+res.InFlight+res.Dropped {
		t.Fatalf("accounting: %+v", res)
	}
	if res.Delivered == 0 {
		t.Fatal("nothing delivered under churn")
	}
}

// TestLinkChurn: the same, with link failures from RandomLinkChurn.
func TestLinkChurn(t *testing.T) {
	hb := core.MustNew(2, 3)
	links, err := faults.RandomLinkChurn(hb, faults.ChurnConfig{
		Order: hb.Order(), Cycles: 1200, MaxLive: 4, Rate: 0.03,
		MinDwell: 50, MaxDwell: 150, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(links) == 0 {
		t.Fatal("empty link schedule")
	}
	e, err := New(hb, Config{
		Cycles: 1500, Rate: 0.2, PacketLen: 3, BufDepth: 2, VCs: 4,
		MaxRoute: hb.DiameterFormula(), Adaptive: hbAdaptive(hb), Seed: 31,
		Links: links,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked {
		t.Fatalf("link churn run deadlocked: %+v", res)
	}
	if res.Injected != res.Delivered+res.InFlight+res.Dropped {
		t.Fatalf("accounting: %+v", res)
	}
}

// TestCollectiveReplay: a broadcast plan injected with no background
// load completes in order; an allreduce plan under saturating
// background load still completes, later.
func TestCollectiveReplay(t *testing.T) {
	hb := core.MustNew(2, 3)
	bcast, err := collectives.BroadcastMsgs(hb, 0)
	if err != nil {
		t.Fatal(err)
	}
	quiet, err := New(hb, Config{
		Cycles: 4000, Rate: 0, PacketLen: 2, BufDepth: 2, VCs: 4,
		MaxRoute: hb.DiameterFormula(), Adaptive: hbAdaptive(hb), Seed: 1,
		Messages: bcast,
	})
	if err != nil {
		t.Fatal(err)
	}
	resQ, err := quiet.Run()
	if err != nil {
		t.Fatal(err)
	}
	if resQ.CollectiveDone < 0 {
		t.Fatalf("quiet broadcast never completed: %+v", resQ)
	}
	if resQ.Delivered != len(bcast) {
		t.Fatalf("delivered %d of %d plan messages", resQ.Delivered, len(bcast))
	}

	allr, err := collectives.AllReduceMsgs(hb)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := New(hb, Config{
		Cycles: 8000, Rate: 0.2, InjectCycles: 6000, PacketLen: 2, BufDepth: 2, VCs: 4,
		MaxRoute: hb.DiameterFormula(), Adaptive: hbAdaptive(hb), Seed: 2,
		Messages: allr,
	})
	if err != nil {
		t.Fatal(err)
	}
	resL, err := loaded.Run()
	if err != nil {
		t.Fatal(err)
	}
	if resL.Deadlocked {
		t.Fatalf("loaded allreduce deadlocked: %+v", resL)
	}
	if resL.CollectiveDone < 0 {
		t.Fatalf("allreduce under load never completed: %+v", resL)
	}
	if resL.CollectiveDone <= resQ.CollectiveDone {
		t.Fatalf("background load did not stretch the collective: %d <= %d",
			resL.CollectiveDone, resQ.CollectiveDone)
	}
}

// TestTreeEscapeAdaptive: the generic BFS-tree escape keeps an
// arbitrary graph (hyper-deBruijn exercised in the bench; a ring here)
// deadlock-free under the same saturating load that wedges SingleVC.
func TestTreeEscapeAdaptive(t *testing.T) {
	ring := graph.Ring{N: 8}
	ad, err := BFSAdaptive(ring)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(ring, Config{
		Cycles: 4000, Rate: 0.5, PacketLen: 4, BufDepth: 1, VCs: 2,
		MaxRoute: 2 * 8, Seed: 3, Adaptive: ad,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked {
		t.Fatalf("tree-escape ring deadlocked: %+v", res)
	}
	if res.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
}

// TestChurnSlotRecycling: dropCrossing runs after the act/nxt swap, so
// a dropped worm's slot can still sit in s.act for the coming cycle.
// Recycling the slot before that stale entry is consumed would let the
// next injectShard pop it (LIFO) and append a second act entry for the
// same slot — the new worm would then be claimed and committed twice
// per cycle for the rest of its life. Drive the serial loop by hand
// under combined node/link churn with active injection and assert the
// no-duplicate invariant directly on every shard's act list.
func TestChurnSlotRecycling(t *testing.T) {
	hb := core.MustNew(2, 3)
	sched, err := faults.RandomChurn(faults.ChurnConfig{
		Order: hb.Order(), Cycles: 900, MaxLive: 2, Rate: 0.05,
		MinDwell: 10, MaxDwell: 60, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	links, err := faults.RandomLinkChurn(hb, faults.ChurnConfig{
		Order: hb.Order(), Cycles: 900, MaxLive: 6, Rate: 0.2,
		MinDwell: 5, MaxDwell: 30, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(hb, Config{
		Cycles: 1000, Rate: 0.5, PacketLen: 3, BufDepth: 2, VCs: 4,
		MaxRoute: hb.DiameterFormula(), Adaptive: hbAdaptive(hb), Seed: 33,
		Schedule: sched, Links: links,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.reset()
	e.applyEvents(0)
	seen := make(map[int32]bool)
	deferred := 0
	for c := 0; ; {
		for si := range e.shards {
			e.injectShard(&e.shards[si], c)
		}
		for si := range e.shards {
			s := &e.shards[si]
			for k := range seen {
				delete(seen, k)
			}
			for _, slot := range s.act {
				if seen[slot] {
					t.Fatalf("cycle %d: slot %d appears twice in shard %d act list", c, slot, s.id)
				}
				seen[slot] = true
			}
		}
		for si := range e.shards {
			e.claimShard(&e.shards[si], c)
		}
		for si := range e.shards {
			e.commitShard(&e.shards[si], c)
		}
		next, stop := e.postCycle(c)
		if stop {
			break
		}
		e.applyEvents(next)
		for si := range e.shards {
			deferred += len(e.shards[si].dfree)
		}
		c = next
	}
	if deferred == 0 {
		t.Fatal("churn never deferred a dropped worm's slot — scenario not exercised")
	}
}

// TestDeadlockFastForwardParity: the fast-forward path must charge the
// idle budget exactly like per-cycle accounting, reporting DeadCycle as
// the cycle at which cumulative idle first reaches DeadlockAt. Four
// messages on a single-VC 4-ring wedge in a channel-wait cycle: all
// worms acquire their first hop and inject a flit at cycle 0, block and
// park at cycle 1 (idle=1), and a distant link event makes the engine
// fast-forward instead of stepping. Idle therefore reaches DeadlockAt
// at cycle DeadlockAt, jump or no jump.
func TestDeadlockFastForwardParity(t *testing.T) {
	const n = 4
	ring := graph.Ring{N: n}
	msgs := []collectives.Msg{
		{Src: 0, Dst: 2}, {Src: 1, Dst: 3}, {Src: 2, Dst: 0}, {Src: 3, Dst: 1},
	}
	far := faults.LinkSchedule{
		{Cycle: 2000, U: 0, V: 1, Fail: true},
		{Cycle: 2010, U: 0, V: 1, Fail: false},
	}
	e, err := New(ring, Config{
		Cycles: 4000, PacketLen: 4, BufDepth: 1, VCs: 1, DeadlockAt: 64,
		MaxRoute: n - 1, Route: cwRingRoute(n), Policy: wormhole.SingleVC,
		Messages: msgs, Links: far,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Fatalf("wedged ring not detected: %+v", res)
	}
	if res.DeadCycle != 64 {
		t.Fatalf("fast-forward DeadCycle = %d, want 64 (idle starts at cycle 1)", res.DeadCycle)
	}
}
