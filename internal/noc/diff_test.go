package noc

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/wormhole"
)

// The event-driven engine and the retained cycle-scan oracle implement
// the same switching semantics but draw injections from different
// random streams (per-shard geometric gaps vs one Bernoulli sweep), so
// the differential check is statistical: averaged over seeds, offered
// load, delivered throughput, and latency must agree within tolerance,
// and the deadlock verdicts must match exactly. One systematic gap is
// accounted for: the oracle silently discards self-addressed draws
// (effective rate r(1-1/n)) while the engine redraws, so throughput is
// compared after scaling the oracle up by n/(n-1).

type stats struct {
	throughput float64 // delivered packets per cycle
	latency    float64
	fraction   float64 // delivered / injected
}

func oracleStats(t *testing.T, g graph.Graph, cfg wormhole.Config, seeds []int64) stats {
	t.Helper()
	var s stats
	for _, seed := range seeds {
		cfg.Seed = seed
		res, err := wormhole.Run(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Deadlocked {
			t.Fatalf("oracle deadlocked at seed %d: %+v", seed, res)
		}
		s.throughput += float64(res.Delivered) / float64(cfg.Cycles)
		s.latency += res.AvgLatency
		s.fraction += float64(res.Delivered) / float64(res.Injected)
	}
	k := float64(len(seeds))
	return stats{s.throughput / k, s.latency / k, s.fraction / k}
}

func engineStats(t *testing.T, g graph.Graph, cfg Config, seeds []int64) stats {
	t.Helper()
	var s stats
	for _, seed := range seeds {
		cfg.Seed = seed
		e, err := New(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Deadlocked {
			t.Fatalf("engine deadlocked at seed %d: %+v", seed, res)
		}
		s.throughput += float64(res.Delivered) / float64(cfg.Cycles)
		s.latency += res.AvgLatency
		s.fraction += float64(res.Delivered) / float64(res.Injected)
	}
	k := float64(len(seeds))
	return stats{s.throughput / k, s.latency / k, s.fraction / k}
}

func relErr(a, b float64) float64 {
	if b == 0 {
		return 1
	}
	d := a/b - 1
	if d < 0 {
		return -d
	}
	return d
}

func checkAgreement(t *testing.T, eng, ora stats, n int) {
	t.Helper()
	adjusted := ora.throughput * float64(n) / float64(n-1)
	if e := relErr(eng.throughput, adjusted); e > 0.15 {
		t.Errorf("throughput diverges: engine %.4f vs oracle %.4f (adjusted %.4f, %.0f%% off)",
			eng.throughput, ora.throughput, adjusted, e*100)
	}
	if e := relErr(eng.latency, ora.latency); e > 0.25 {
		t.Errorf("latency diverges: engine %.2f vs oracle %.2f (%.0f%% off)",
			eng.latency, ora.latency, e*100)
	}
	if eng.fraction < 0.85 || ora.fraction < 0.85 {
		t.Errorf("light load should deliver most packets: engine %.3f, oracle %.3f",
			eng.fraction, ora.fraction)
	}
}

var diffSeeds = []int64{101, 202, 303, 404}

// TestDifferentialRing compares both simulators on the dateline ring at
// a sub-saturation rate.
func TestDifferentialRing(t *testing.T) {
	const n = 8
	ring := graph.Ring{N: n}
	cycles := 6000
	eng := engineStats(t, ring, Config{
		Cycles: cycles, Rate: 0.03, PacketLen: 3, BufDepth: 2, VCs: 2,
		MaxRoute: n - 1, Route: cwRingRoute(n), Policy: wormhole.RingDateline(n),
	}, diffSeeds)
	ora := oracleStats(t, ring, wormhole.Config{
		Cycles: cycles, Rate: 0.03, PacketLen: 3, BufDepth: 2, VCs: 2,
		Route: cwRingRoute(n), Policy: wormhole.RingDateline(n),
	}, diffSeeds)
	checkAgreement(t, eng, ora, n)
}

// TestDifferentialHB compares both simulators on HB(2,3) with the
// dateline policy over the library route.
func TestDifferentialHB(t *testing.T) {
	hb := core.MustNew(2, 3)
	cycles := 5000
	eng := engineStats(t, hb, Config{
		Cycles: cycles, Rate: 0.06, PacketLen: 3, BufDepth: 2, VCs: 4,
		MaxRoute: hb.DiameterFormula(), Route: hb.Route, Policy: wormhole.HBDateline(hb),
	}, diffSeeds)
	ora := oracleStats(t, hb, wormhole.Config{
		Cycles: cycles, Rate: 0.06, PacketLen: 3, BufDepth: 2, VCs: 4,
		Route: hb.Route, Policy: wormhole.HBDateline(hb),
	}, diffSeeds)
	checkAgreement(t, eng, ora, hb.Order())
}

// TestDifferentialDeadlockParity: the structural property the oracle
// exists to cross-check. A saturated single-VC ring deadlocks in both
// simulators; the dateline discipline rescues both.
func TestDifferentialDeadlockParity(t *testing.T) {
	const n = 8
	ring := graph.Ring{N: n}
	for _, seed := range []int64{3, 17} {
		ores, err := wormhole.Run(ring, wormhole.Config{
			Cycles: 4000, Rate: 0.5, PacketLen: 4, BufDepth: 1, VCs: 1,
			Route: cwRingRoute(n), Policy: wormhole.SingleVC, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !ores.Deadlocked {
			t.Fatalf("oracle: single-VC ring survived seed %d: %+v", seed, ores)
		}
		e, err := New(ring, Config{
			Cycles: 4000, Rate: 0.5, PacketLen: 4, BufDepth: 1, VCs: 1,
			MaxRoute: n - 1, Route: cwRingRoute(n), Policy: wormhole.SingleVC, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		eres, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !eres.Deadlocked {
			t.Fatalf("engine: single-VC ring survived seed %d: %+v", seed, eres)
		}

		e, err = New(ring, Config{
			Cycles: 4000, Rate: 0.5, PacketLen: 4, BufDepth: 1, VCs: 2,
			MaxRoute: n - 1, Route: cwRingRoute(n), Policy: wormhole.RingDateline(n), Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		dres, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if dres.Deadlocked {
			t.Fatalf("engine: dateline ring deadlocked at seed %d: %+v", seed, dres)
		}
	}
}
